// Tests: application proxies — completion on assorted rank counts and the
// Table I communication signatures (dominant MPI calls, message scales).
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/registry.hpp"
#include "mpi/machine.hpp"

namespace dfsim::apps {
namespace {

mpi::Profile run(const std::string& app, int n, AppParams p,
                 sim::Tick* runtime = nullptr) {
  mpi::Machine m(topo::Config::mini(4), 55);
  mpi::JobSpec s;
  s.name = app;
  for (int i = 0; i < n; ++i) s.nodes.push_back(i);
  s.app = make_app(app, p);
  const mpi::JobId id = m.submit(std::move(s));
  const mpi::JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w)) << app << " n=" << n;
  if (runtime != nullptr) *runtime = m.job(id).runtime();
  return m.job_profile(id);
}

AppParams tiny() {
  AppParams p;
  p.iterations = 2;
  p.msg_scale = 0.05;
  p.compute_scale = 0.05;
  return p;
}

TEST(Registry, KnowsPaperApps) {
  EXPECT_EQ(paper_app_names().size(), 6u);
  for (const auto& name : paper_app_names()) EXPECT_TRUE(has_app(name));
  EXPECT_FALSE(has_app("NOTANAPP"));
  EXPECT_THROW(make_app("NOTANAPP", {}), std::invalid_argument);
}

class AllApps : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(PaperApps, AllApps,
                         ::testing::ValuesIn(paper_app_names()),
                         [](const auto& inf) { return inf.param; });

TEST_P(AllApps, CompletesOnPowerOfTwoRanks) {
  const mpi::Profile p = run(GetParam(), 16, tiny());
  EXPECT_GT(p.total_mpi_ns(), 0);
}

TEST_P(AllApps, CompletesOnAwkwardRankCounts) {
  for (const int n : {3, 6, 12, 24}) {
    const mpi::Profile p = run(GetParam(), n, tiny());
    EXPECT_GT(p.total_mpi_ns(), 0) << GetParam() << " n=" << n;
  }
}

TEST_P(AllApps, SingleRankDegenerates) {
  sim::Tick rt = 0;
  run(GetParam(), 1, tiny(), &rt);
  EXPECT_GT(rt, 0);
}

TEST_P(AllApps, IterationsScaleRuntime) {
  AppParams p2 = tiny();
  AppParams p6 = tiny();
  p6.iterations = 6;
  sim::Tick r2 = 0, r6 = 0;
  run(GetParam(), 8, p2, &r2);
  run(GetParam(), 8, p6, &r6);
  EXPECT_GT(r6, 2 * r2);
}

TEST(Milc, SignatureMatchesTableI) {
  AppParams p = tiny();
  p.iterations = 3;
  const mpi::Profile prof = run("MILC", 16, p);
  // 4D stencil: 16 halo msgs per iter per rank; 4 allreduces of 8B.
  EXPECT_EQ(prof.stats(mpi::Op::kIsend).calls, 16 * 8 * 3);
  EXPECT_EQ(prof.stats(mpi::Op::kAllreduce).calls, 16 * 8 * 3);
  // Allreduce payload is 8 bytes (latency-bound CG dot products).
  EXPECT_EQ(prof.stats(mpi::Op::kAllreduce).bytes /
                prof.stats(mpi::Op::kAllreduce).calls,
            8);
  // Dominant calls drawn from {Allreduce, Wait(all), Isend} (Table I row 1).
  const auto top = prof.ops_by_time();
  const std::vector<mpi::Op> expect_pool{mpi::Op::kAllreduce, mpi::Op::kWaitall,
                                         mpi::Op::kWait, mpi::Op::kIsend};
  EXPECT_NE(std::find(expect_pool.begin(), expect_pool.end(), top[0]),
            expect_pool.end());
}

TEST(Milc, ReorderChangesMappingNotVolume) {
  AppParams p = tiny();
  const mpi::Profile a = run("MILC", 16, p);
  const mpi::Profile b = run("MILCREORDER", 16, p);
  EXPECT_EQ(a.stats(mpi::Op::kIsend).calls, b.stats(mpi::Op::kIsend).calls);
  EXPECT_EQ(a.stats(mpi::Op::kIsend).bytes, b.stats(mpi::Op::kIsend).bytes);
}

TEST(Hacc, LargeMessagesLowMpiShare) {
  AppParams p = tiny();
  const mpi::Profile prof = run("HACC", 16, p);
  // FFT pencils: large point-to-point (>= 100KB at scale 1; here scaled).
  const auto& isend = prof.stats(mpi::Op::kIsend);
  ASSERT_GT(isend.calls, 0);
  // Per-message size must dwarf MILC's KB-range halos at equal scale.
  const mpi::Profile milc = run("MILC", 16, p);
  EXPECT_GT(isend.bytes / isend.calls,
            4 * milc.stats(mpi::Op::kIsend).bytes /
                milc.stats(mpi::Op::kIsend).calls);
  // Wait-dominated (Table I row 4).
  const auto top = prof.ops_by_time();
  EXPECT_TRUE(top[0] == mpi::Op::kWait || top[0] == mpi::Op::kWaitall);
}

TEST(Qbox, AlltoallvDominates) {
  const mpi::Profile prof = run("QBOX", 16, tiny());
  EXPECT_GT(prof.stats(mpi::Op::kAlltoallv).calls, 0);
  const auto top = prof.ops_by_time();
  EXPECT_EQ(top[0], mpi::Op::kAlltoallv);
}

TEST(Rayleigh, HeavyAlltoallvWithBarrier) {
  const mpi::Profile prof = run("RAYLEIGH", 16, tiny());
  EXPECT_GT(prof.stats(mpi::Op::kAlltoallv).calls, 0);
  EXPECT_GT(prof.stats(mpi::Op::kBarrier).calls, 0);
  // No nonblocking point-to-point in the app itself (Table I: "none";
  // the packing pipeline uses blocking Send/Recv).
  EXPECT_EQ(prof.stats(mpi::Op::kIsend).calls, 0);
  EXPECT_GT(prof.stats(mpi::Op::kSend).calls, 0);
}

TEST(Nek5000, UsesBlockingRecvAndAllreduce) {
  const mpi::Profile prof = run("NEK5000", 16, tiny());
  EXPECT_GT(prof.stats(mpi::Op::kRecv).calls, 0);
  EXPECT_GT(prof.stats(mpi::Op::kAllreduce).calls, 0);
  EXPECT_EQ(prof.stats(mpi::Op::kAllreduce).bytes /
                prof.stats(mpi::Op::kAllreduce).calls,
            16);
}

TEST(Synthetic, PatternsCompleteWithFixedIterations) {
  mpi::Machine m(topo::Config::mini(4), 66);
  SyntheticParams sp;
  sp.iterations = 3;
  sp.msg_bytes = 4096;
  sp.compute_ns = 1000;
  int jid = 0;
  std::vector<mpi::JobId> ids;
  for (auto fn : {&uniform_traffic, &stencil3d_traffic, &incast_traffic,
                  &bisection_traffic, &compute_only}) {
    mpi::JobSpec s;
    s.name = "syn" + std::to_string(jid);
    for (int i = 0; i < 8; ++i) s.nodes.push_back(jid * 8 + i);
    s.app = [fn, sp](mpi::RankCtx& c) { return fn(c, sp); };
    ids.push_back(m.submit(std::move(s)));
    ++jid;
  }
  EXPECT_TRUE(m.run_to_completion(ids));
}

TEST(Synthetic, OpenEndedStopsOnRequest) {
  mpi::Machine m(topo::Config::mini(2), 67);
  SyntheticParams sp;
  sp.iterations = 0;
  sp.msg_bytes = 2048;
  sp.compute_ns = 5000;
  mpi::JobSpec s;
  s.name = "bg";
  for (int i = 0; i < 8; ++i) s.nodes.push_back(i);
  s.app = [sp](mpi::RankCtx& c) { return uniform_traffic(c, sp); };
  const mpi::JobId id = m.submit(std::move(s));
  m.run_for(300 * sim::kMicrosecond);
  EXPECT_FALSE(m.job(id).complete());
  EXPECT_GT(m.network().stats().packets_injected, 0);
  m.request_stop(id);
  m.run_for(5 * sim::kMillisecond);
  // Best-effort stop: all in-flight traffic drains even if some ranks stay
  // blocked on receives from already-stopped peers.
  EXPECT_EQ(m.network().packets_in_flight(), 0);
}

TEST(Helpers, BalancedDims) {
  EXPECT_EQ(balanced_dims(256, 4), (std::vector<int>{4, 4, 4, 4}));
  EXPECT_EQ(balanced_dims(128, 4), (std::vector<int>{4, 4, 4, 2}));
  EXPECT_EQ(balanced_dims(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(balanced_dims(7, 3), (std::vector<int>{7, 1, 1}));
  EXPECT_EQ(balanced_dims(1, 3), (std::vector<int>{1, 1, 1}));
}

TEST(Helpers, CoordRoundTrip) {
  const std::vector<int> dims{4, 3, 2};
  for (int r = 0; r < 24; ++r)
    EXPECT_EQ(coords_to_rank(rank_to_coords(r, dims), dims), r);
}

}  // namespace
}  // namespace dfsim::apps
