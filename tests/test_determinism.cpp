// Golden-determinism regression tests.
//
// The event-queue pooling rework and the planner's precomputed routing
// tables are pure performance changes: for a given (config, seed) the
// simulator must produce byte-identical counters, hop counts, and
// minimal/non-minimal decision splits — run to run, and for every worker
// count of the parallel trial runner. These tests pin that contract so a
// future "optimization" that perturbs event order or RNG draw order fails
// loudly instead of silently shifting results.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "topo/config.hpp"

namespace dfsim::core {
namespace {

/// CounterSnapshot is an all-int64 aggregate: byte equality is exact
/// equality, and the strongest statement of "same simulation".
bool same_bytes(const net::CounterSnapshot& a, const net::CounterSnapshot& b) {
  return std::memcmp(&a, &b, sizeof(net::CounterSnapshot)) == 0;
}

/// Small Theta-preset production trial: scaled Theta system, a MILC job on
/// 32 nodes over light background traffic. Finishes in well under a second.
ProductionConfig small_theta(std::uint64_t seed) {
  ProductionConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = 0.1;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(same_bytes(a.global, b.global));
  EXPECT_EQ(a.netstats.total_hops, b.netstats.total_hops);
  EXPECT_EQ(a.netstats.minimal_decisions, b.netstats.minimal_decisions);
  EXPECT_EQ(a.netstats.nonminimal_decisions, b.netstats.nonminimal_decisions);
  EXPECT_EQ(a.netstats.packets_injected, b.netstats.packets_injected);
  EXPECT_EQ(a.netstats.packets_delivered, b.netstats.packets_delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
  // Runtime is simulated time (ticks scaled to ms), not wall clock: it must
  // reproduce exactly too.
  EXPECT_EQ(a.runtime_ms, b.runtime_ms);
}

TEST(GoldenDeterminism, RepeatedTrialIsByteIdentical) {
  const ProductionConfig cfg = small_theta(2021);
  const RunResult a = run_production(cfg);
  const RunResult b = run_production(cfg);
  expect_identical(a, b);
  // Sanity: the run actually simulated traffic.
  ASSERT_TRUE(a.ok);
  EXPECT_GT(a.netstats.packets_delivered, 0);
  EXPECT_GT(a.global.rank3.flits, 0);
}

TEST(GoldenDeterminism, EnsembleIdenticalAcrossWorkerCounts) {
  const ProductionConfig cfg = small_theta(2021);
  constexpr int kSamples = 3;
  const BatchResult serial =
      run_production_ensemble(cfg, kSamples, BatchOptions{.jobs = 1});
  const BatchResult parallel =
      run_production_ensemble(cfg, kSamples, BatchOptions{.jobs = 4});
  ASSERT_EQ(serial.results.size(), static_cast<std::size_t>(kSamples));
  ASSERT_EQ(parallel.results.size(), static_cast<std::size_t>(kSamples));
  for (int i = 0; i < kSamples; ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial.results[static_cast<std::size_t>(i)],
                     parallel.results[static_cast<std::size_t>(i)]);
  }
  // Distinct derived seeds must actually produce distinct trials (guards
  // against a bug where every worker reuses the root seed).
  bool any_diff = false;
  for (int i = 1; i < kSamples; ++i)
    any_diff |= !same_bytes(serial.results[0].global,
                            serial.results[static_cast<std::size_t>(i)].global);
  EXPECT_TRUE(any_diff);
}

// Both determinism families must hold on every topology behind the
// Topology interface, not just the Aries dragonfly the contract was pinned
// on. One parametrized sweep: (repeat, jobs 1 vs 4, serial vs sharded x
// worker widths) per topology kind.
class TopologyDeterminism
    : public ::testing::TestWithParam<topo::TopologyKind> {};

TEST_P(TopologyDeterminism, AllFamiliesByteIdentical) {
  ProductionConfig cfg = small_theta(2021);
  cfg.system.kind = GetParam();

  // Run-to-run on the serial engine.
  cfg.shards = 0;
  const RunResult serial = run_production(cfg);
  ASSERT_TRUE(serial.ok) << serial.fail_reason;
  EXPECT_GT(serial.netstats.packets_delivered, 0);
  expect_identical(serial, run_production(cfg));

  // Sharded family: every shard count >= 1 and worker width agrees with
  // shards=1 (and with each other); the serial engine is its own family.
  cfg.shards = 1;
  const RunResult sharded = run_production(cfg);
  for (const int shards : {2, 4}) {
    for (const int workers : {1, 3}) {
      SCOPED_TRACE(testing::Message() << "shards=" << shards
                                      << " workers=" << workers);
      cfg.shards = shards;
      cfg.shard_workers = workers;
      expect_identical(sharded, run_production(cfg));
    }
  }

  // Trial-runner jobs never affect results, on either substrate.
  cfg.shards = 0;
  cfg.shard_workers = 0;
  constexpr int kSamples = 2;
  const BatchResult one =
      run_production_ensemble(cfg, kSamples, BatchOptions{.jobs = 1});
  const BatchResult four =
      run_production_ensemble(cfg, kSamples, BatchOptions{.jobs = 4});
  ASSERT_EQ(one.results.size(), static_cast<std::size_t>(kSamples));
  for (int i = 0; i < kSamples; ++i) {
    SCOPED_TRACE(i);
    expect_identical(one.results[static_cast<std::size_t>(i)],
                     four.results[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyDeterminism,
                         ::testing::Values(topo::TopologyKind::kDragonfly,
                                           topo::TopologyKind::kDragonflyPlus,
                                           topo::TopologyKind::kSlingshot),
                         [](const auto& info) {
                           return std::string(
                               topo::topology_kind_name(info.param));
                         });

}  // namespace
}  // namespace dfsim::core
