// Golden-determinism regression tests.
//
// The event-queue pooling rework and the planner's precomputed routing
// tables are pure performance changes: for a given (config, seed) the
// simulator must produce byte-identical counters, hop counts, and
// minimal/non-minimal decision splits — run to run, and for every worker
// count of the parallel trial runner. These tests pin that contract so a
// future "optimization" that perturbs event order or RNG draw order fails
// loudly instead of silently shifting results.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "topo/config.hpp"

namespace dfsim::core {
namespace {

/// CounterSnapshot is an all-int64 aggregate: byte equality is exact
/// equality, and the strongest statement of "same simulation".
bool same_bytes(const net::CounterSnapshot& a, const net::CounterSnapshot& b) {
  return std::memcmp(&a, &b, sizeof(net::CounterSnapshot)) == 0;
}

/// Small Theta-preset production trial: scaled Theta system, a MILC job on
/// 32 nodes over light background traffic. Finishes in well under a second.
ProductionConfig small_theta(std::uint64_t seed) {
  ProductionConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = 0.1;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(same_bytes(a.global, b.global));
  EXPECT_EQ(a.netstats.total_hops, b.netstats.total_hops);
  EXPECT_EQ(a.netstats.minimal_decisions, b.netstats.minimal_decisions);
  EXPECT_EQ(a.netstats.nonminimal_decisions, b.netstats.nonminimal_decisions);
  EXPECT_EQ(a.netstats.packets_injected, b.netstats.packets_injected);
  EXPECT_EQ(a.netstats.packets_delivered, b.netstats.packets_delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
  // Runtime is simulated time (ticks scaled to ms), not wall clock: it must
  // reproduce exactly too.
  EXPECT_EQ(a.runtime_ms, b.runtime_ms);
}

TEST(GoldenDeterminism, RepeatedTrialIsByteIdentical) {
  const ProductionConfig cfg = small_theta(2021);
  const RunResult a = run_production(cfg);
  const RunResult b = run_production(cfg);
  expect_identical(a, b);
  // Sanity: the run actually simulated traffic.
  ASSERT_TRUE(a.ok);
  EXPECT_GT(a.netstats.packets_delivered, 0);
  EXPECT_GT(a.global.rank3.flits, 0);
}

TEST(GoldenDeterminism, EnsembleIdenticalAcrossWorkerCounts) {
  const ProductionConfig cfg = small_theta(2021);
  constexpr int kSamples = 3;
  const BatchResult serial =
      run_production_ensemble(cfg, kSamples, BatchOptions{.jobs = 1});
  const BatchResult parallel =
      run_production_ensemble(cfg, kSamples, BatchOptions{.jobs = 4});
  ASSERT_EQ(serial.results.size(), static_cast<std::size_t>(kSamples));
  ASSERT_EQ(parallel.results.size(), static_cast<std::size_t>(kSamples));
  for (int i = 0; i < kSamples; ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial.results[static_cast<std::size_t>(i)],
                     parallel.results[static_cast<std::size_t>(i)]);
  }
  // Distinct derived seeds must actually produce distinct trials (guards
  // against a bug where every worker reuses the root seed).
  bool any_diff = false;
  for (int i = 1; i < kSamples; ++i)
    any_diff |= !same_bytes(serial.results[0].global,
                            serial.results[static_cast<std::size_t>(i)].global);
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace dfsim::core
