// Topology-contract property tests: every concrete topo::Topology must
// satisfy the same structural invariants the forwarding plane and the
// route planner rely on (docs/MODEL.md section 13). The suite runs the
// identical checks over all three models — Aries dragonfly, two-level
// dragonfly+, flat-group slingshot — so a new topology only has to be
// added to `kinds()` below to inherit the whole contract.
#include <gtest/gtest.h>

#include <array>
#include <queue>
#include <vector>

#include "topo/dragonfly.hpp"
#include "topo/dragonfly_plus.hpp"
#include "topo/slingshot.hpp"
#include "topo/topology.hpp"

namespace dfsim::topo {
namespace {

std::vector<TopologyKind> kinds() {
  return {TopologyKind::kDragonfly, TopologyKind::kDragonflyPlus,
          TopologyKind::kSlingshot};
}

std::unique_ptr<const Topology> build(TopologyKind k, Config cfg = Config::mini(4)) {
  cfg.kind = k;
  return make_topology(cfg);
}

// BFS over router links (all port classes), returning hop distance per
// router, -1 = unreachable.
std::vector<int> bfs(const Topology& t, RouterId src) {
  std::vector<int> dist(static_cast<std::size_t>(t.num_routers()), -1);
  std::queue<RouterId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const RouterId u = q.front();
    q.pop();
    for (const PortInfo& pi : t.ports(u)) {
      if (pi.cls == TileClass::kProc) continue;
      if (dist[static_cast<std::size_t>(pi.peer_router)] < 0) {
        dist[static_cast<std::size_t>(pi.peer_router)] =
            dist[static_cast<std::size_t>(u)] + 1;
        q.push(pi.peer_router);
      }
    }
  }
  return dist;
}

TEST(TopologyContract, PeerOfPeerIsSelf) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    for (RouterId r = 0; r < t->num_routers(); ++r) {
      for (PortId p = 0; p < t->num_ports(r); ++p) {
        const PortInfo& pi = t->port(r, p);
        if (pi.cls == TileClass::kProc) {
          EXPECT_LT(pi.peer_router, 0);
          continue;
        }
        ASSERT_GE(pi.peer_router, 0);
        ASSERT_LT(pi.peer_router, t->num_routers());
        const PortInfo& back = t->port(pi.peer_router, pi.peer_port);
        EXPECT_EQ(back.peer_router, r) << "router " << r << " port " << p;
        EXPECT_EQ(back.peer_port, p) << "router " << r << " port " << p;
        EXPECT_EQ(back.cls, pi.cls);
      }
    }
  }
}

TEST(TopologyContract, FullReachabilityWithinDiameterBound) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    // Diameter bound: intra-group diameter <= 2 (clique: 1, two-level or
    // chassis/slot: 2) plus one global hop, plus <= 2 local hops at the
    // destination group => 5. The dragonfly's own bound is 5 (2+1+2); the
    // slingshot's is 3 (1+1+1).
    const int bound = k == TopologyKind::kSlingshot ? 3 : 5;
    for (const RouterId src : {RouterId{0}, t->num_routers() / 2,
                               t->num_routers() - 1}) {
      const auto dist = bfs(*t, src);
      for (RouterId r = 0; r < t->num_routers(); ++r) {
        ASSERT_GE(dist[static_cast<std::size_t>(r)], 0)
            << "router " << r << " unreachable from " << src;
        EXPECT_LE(dist[static_cast<std::size_t>(r)], bound);
      }
    }
  }
}

TEST(TopologyContract, MinimalHopsMatchesBfsDistance) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    for (const RouterId src : {RouterId{0}, t->num_routers() - 1}) {
      const auto dist = bfs(*t, src);
      for (RouterId r = 0; r < t->num_routers(); ++r) {
        // minimal_hops assumes the configured gateway spread; BFS may find
        // an equal or shorter route but never a longer one.
        EXPECT_GE(t->minimal_hops(src, r), dist[static_cast<std::size_t>(r)])
            << src << " -> " << r;
      }
    }
  }
}

TEST(TopologyContract, TileClassPortAccounting) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    std::array<long, kNumTileClasses> count{};
    for (RouterId r = 0; r < t->num_routers(); ++r) {
      // Class ordering [local][global][proc] per router.
      PortId p = 0;
      for (; p < t->local_end(r); ++p)
        EXPECT_TRUE(t->port(r, p).cls == TileClass::kRank1 ||
                    t->port(r, p).cls == TileClass::kRank2);
      for (; p < t->proc_port_base(r); ++p)
        EXPECT_EQ(t->port(r, p).cls, TileClass::kRank3);
      for (; p < t->num_ports(r); ++p)
        EXPECT_EQ(t->port(r, p).cls, TileClass::kProc);
      for (const PortInfo& pi : t->ports(r))
        ++count[static_cast<std::size_t>(pi.cls)];
    }
    const Config& cfg = t->config();
    // Every group pair gets cables_per_group_pair cables, two endpoints each.
    const long pairs =
        static_cast<long>(cfg.groups) * (cfg.groups - 1) / 2;
    EXPECT_EQ(count[static_cast<std::size_t>(TileClass::kRank3)],
              2 * pairs * cfg.cables_per_group_pair);
    // One proc port per hosted node, and the node count is the config's.
    EXPECT_EQ(count[static_cast<std::size_t>(TileClass::kProc)],
              t->num_nodes());
    EXPECT_EQ(t->num_nodes(), cfg.num_nodes());
    // Local port total per model.
    const long local = count[static_cast<std::size_t>(TileClass::kRank1)] +
                       count[static_cast<std::size_t>(TileClass::kRank2)];
    if (k == TopologyKind::kDragonflyPlus) {
      // Complete bipartite: leaves * spines links, two endpoints each.
      EXPECT_EQ(local, 2L * cfg.groups * cfg.routers_per_group() *
                           cfg.slots_per_chassis);
      EXPECT_EQ(count[static_cast<std::size_t>(TileClass::kRank2)], 0);
    } else if (k == TopologyKind::kSlingshot) {
      // Clique: rpg * (rpg - 1) directed edges per group.
      const long rpg = cfg.routers_per_group();
      EXPECT_EQ(local, static_cast<long>(cfg.groups) * rpg * (rpg - 1));
      EXPECT_EQ(count[static_cast<std::size_t>(TileClass::kRank2)], 0);
    }
  }
}

TEST(TopologyContract, NodeTablesAreContiguousAndConsistent) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    NodeId expect = 0;
    for (RouterId r = 0; r < t->num_routers(); ++r) {
      if (t->node_count(r) > 0) EXPECT_EQ(t->node_first(r), expect);
      for (int s = 0; s < t->node_count(r); ++s) {
        const NodeId n = t->node_first(r) + s;
        EXPECT_EQ(n, expect);
        EXPECT_EQ(t->router_of_node(n), r);
        EXPECT_EQ(t->node_slot(n), s);
        EXPECT_EQ(t->group_of_node(n), t->group_of_router(r));
        // Eject port round-trips to the node.
        const PortId ep = t->eject_port(r, n);
        EXPECT_EQ(t->port(r, ep).eject_node, n);
        ++expect;
      }
    }
    EXPECT_EQ(expect, t->num_nodes());
  }
}

TEST(TopologyContract, GatewayTablesCoverEveryGroupPair) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    for (GroupId g = 0; g < t->groups(); ++g) {
      for (GroupId h = 0; h < t->groups(); ++h) {
        if (g == h) continue;
        const auto gws = t->gateways(g, h);
        ASSERT_EQ(static_cast<int>(gws.size()),
                  t->config().cables_per_group_pair);
        for (const Gateway& gw : gws) {
          EXPECT_EQ(t->group_of_router(gw.router), g);
          const PortInfo& pi = t->port(gw.router, gw.port);
          EXPECT_EQ(pi.cls, TileClass::kRank3);
          EXPECT_EQ(pi.target_group, h);
          EXPECT_EQ(t->group_of_router(pi.peer_router), h);
        }
      }
    }
  }
}

TEST(TopologyContract, LocalFirstHopReachesTargetWithinTwoHops) {
  for (const TopologyKind k : kinds()) {
    const auto t = build(k);
    SCOPED_TRACE(t->name());
    for (GroupId g = 0; g < 2; ++g) {
      const RouterId base = g * t->routers_per_group();
      for (int i = 0; i < t->routers_per_group(); ++i) {
        for (int j = 0; j < t->routers_per_group(); ++j) {
          RouterId cur = base + i;
          const RouterId dst = base + j;
          int hops = 0;
          while (cur != dst) {
            const PortId p = t->local_first_hop(cur, dst);
            ASSERT_GE(p, 0) << cur << " -> " << dst;
            ASSERT_LT(p, t->local_end(cur));
            cur = t->port(cur, p).peer_router;
            ASSERT_LE(++hops, 2) << "local route too long";
          }
        }
      }
    }
  }
}

TEST(TopologyContract, DragonflyPlusShapeMapping) {
  Config cfg = Config::mini(4);
  cfg.kind = TopologyKind::kDragonflyPlus;
  const auto t = make_topology(cfg);
  // Same node count as the dragonfly on the same config, more routers
  // (spines are transit-only).
  EXPECT_EQ(t->num_nodes(), cfg.num_nodes());
  EXPECT_EQ(t->routers_per_group(),
            cfg.routers_per_group() + cfg.slots_per_chassis);
  EXPECT_GT(t->num_routers(), cfg.num_routers());
  const DragonflyPlus& dp = dynamic_cast<const DragonflyPlus&>(*t);
  for (RouterId r = 0; r < t->num_routers(); ++r) {
    if (dp.is_leaf(r))
      EXPECT_EQ(t->node_count(r), cfg.nodes_per_router);
    else
      EXPECT_EQ(t->node_count(r), 0);
  }
}

TEST(TopologyContract, DragonflyChassisSlotTablesMatchArithmetic) {
  const Dragonfly d(Config::mini(4));
  const Config& cfg = d.config();
  for (RouterId r = 0; r < d.num_routers(); ++r) {
    const int in_group = r % cfg.routers_per_group();
    EXPECT_EQ(d.chassis_of(r), in_group / cfg.slots_per_chassis);
    EXPECT_EQ(d.slot_of(r), r % cfg.slots_per_chassis);
    EXPECT_EQ(d.router_at(d.group_of_router(r), d.chassis_of(r), d.slot_of(r)),
              r);
  }
}

TEST(TopologyContract, MakeTopologyHonorsKind) {
  Config cfg = Config::mini(2);
  cfg.kind = TopologyKind::kDefault;
  EXPECT_EQ(make_topology(cfg)->kind(), TopologyKind::kDragonfly);
  cfg.kind = TopologyKind::kDragonflyPlus;
  EXPECT_EQ(make_topology(cfg)->kind(), TopologyKind::kDragonflyPlus);
  cfg.kind = TopologyKind::kSlingshot;
  EXPECT_EQ(make_topology(cfg)->kind(), TopologyKind::kSlingshot);
}

TEST(TopologyContract, KindNamesRoundTrip) {
  for (const TopologyKind k : kinds()) {
    TopologyKind parsed{};
    ASSERT_TRUE(parse_topology_kind(topology_kind_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  TopologyKind parsed{};
  EXPECT_TRUE(parse_topology_kind("default", parsed));
  EXPECT_EQ(parsed, TopologyKind::kDefault);
  EXPECT_FALSE(parse_topology_kind("torus", parsed));
  EXPECT_FALSE(parse_topology_kind("", parsed));
}

}  // namespace
}  // namespace dfsim::topo
