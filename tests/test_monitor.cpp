// Tests: AutoPerf reports and LDMS sampling.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "monitor/autoperf.hpp"
#include "monitor/ldms.hpp"
#include "sched/scheduler.hpp"

namespace dfsim::monitor {
namespace {

struct Ran {
  Ran() : sched(topo::Config::mini(4), 21) {
    apps::AppParams p;
    p.iterations = 3;
    p.msg_scale = 0.1;
    p.compute_scale = 0.1;
    id = sched.submit_app("MILC", 16, sched::Placement::kCompact,
                          routing::Mode::kAd0, p);
    baseline = local_baseline(sched.machine(), id);
  }
  void run() {
    const mpi::JobId w[] = {id};
    ASSERT_TRUE(sched.machine().run_to_completion(w));
  }
  sched::Scheduler sched;
  mpi::JobId id = -1;
  net::CounterSnapshot baseline;
};

TEST(AutoPerf, ReportHasProfileAndCounters) {
  Ran r;
  r.run();
  const AutoPerfReport rep = collect(r.sched.machine(), r.id, r.baseline);
  EXPECT_EQ(rep.app, "MILC");
  EXPECT_EQ(rep.nranks, 16);
  EXPECT_GT(rep.runtime_ms, 0.0);
  EXPECT_GT(rep.mpi_fraction, 0.0);
  EXPECT_LT(rep.mpi_fraction, 1.0);
  EXPECT_GT(rep.local.rank1.flits + rep.local.rank2.flits +
                rep.local.rank3.flits,
            0);
  EXPECT_GT(rep.local.proc_req.flits, 0);
  const auto top = rep.top_ops(3);
  EXPECT_EQ(top.size(), 3u);
  EXPECT_GT(rep.avg_bytes(mpi::Op::kIsend), 0.0);
  EXPECT_EQ(rep.avg_bytes(mpi::Op::kBcast), 0.0);
}

TEST(AutoPerf, LocalViewSubsetOfGlobal) {
  Ran r;
  r.run();
  const AutoPerfReport rep = collect(r.sched.machine(), r.id, r.baseline);
  const auto global = r.sched.machine().network().snapshot_all();
  EXPECT_LE(rep.local.rank3.flits, global.rank3.flits);
  EXPECT_LE(rep.local.proc_req.flits, global.proc_req.flits);
}

TEST(Ldms, SamplesAtPeriod) {
  Ran r;
  LdmsSampler ldms(r.sched.machine().network(), 50 * sim::kMicrosecond);
  ldms.start();
  r.run();
  const auto& samples = ldms.samples();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_EQ(samples[i].t - samples[i - 1].t, 50 * sim::kMicrosecond);
}

TEST(Ldms, DeltasAreNonNegativeAndSumToTotal) {
  Ran r;
  LdmsSampler ldms(r.sched.machine().network(), 20 * sim::kMicrosecond);
  ldms.start();
  r.run();
  const auto deltas = ldms.interval_deltas();
  ASSERT_FALSE(deltas.empty());
  std::int64_t sum = 0;
  for (const auto& d : deltas) {
    EXPECT_GE(d.cumulative.rank1.flits, 0);
    EXPECT_GE(d.cumulative.rank3.stall_ns, 0);
    sum += d.cumulative.rank1.flits;
  }
  const auto& first = ldms.samples().front().cumulative;
  const auto& last = ldms.samples().back().cumulative;
  EXPECT_EQ(sum, last.rank1.flits - first.rank1.flits);
}

TEST(Ldms, MaxSamplesBounds) {
  sched::Scheduler sched(topo::Config::mini(2), 23);
  LdmsSampler ldms(sched.machine().network(), 10 * sim::kMicrosecond, 5);
  ldms.start();
  sched.machine().run_for(sim::kMillisecond);
  EXPECT_EQ(ldms.samples().size(), 5u);
}

TEST(Ldms, StopHaltsSampling) {
  sched::Scheduler sched(topo::Config::mini(2), 23);
  LdmsSampler ldms(sched.machine().network(), 10 * sim::kMicrosecond);
  ldms.start();
  sched.machine().run_for(55 * sim::kMicrosecond);
  ldms.stop();
  const auto count = ldms.samples().size();
  sched.machine().run_for(sim::kMillisecond);
  EXPECT_EQ(ldms.samples().size(), count);
}

TEST(Ldms, PerTileCountersMatchSnapshotTotals) {
  Ran r;
  r.run();
  const auto& net = r.sched.machine().network();
  const auto tiles = per_tile_counters(net);
  // One row per port of every router.
  std::size_t expect = 0;
  const auto& topo = net.topology();
  for (topo::RouterId rr = 0; rr < topo.config().num_routers(); ++rr)
    expect += static_cast<std::size_t>(topo.num_ports(rr));
  EXPECT_EQ(tiles.size(), expect);
  // Per-class flit totals must match the snapshot (router-side counters;
  // proc classes also include NIC injection in the snapshot).
  std::int64_t rank1 = 0, rank3 = 0;
  for (const auto& t : tiles) {
    if (t.cls == topo::TileClass::kRank1) rank1 += t.flits;
    if (t.cls == topo::TileClass::kRank3) rank3 += t.flits;
  }
  const auto snap = net.snapshot_all();
  EXPECT_EQ(rank1, snap.rank1.flits);
  EXPECT_EQ(rank3, snap.rank3.flits);
}

TEST(Ldms, NicLatenciesPopulated) {
  Ran r;
  r.run();
  const auto lats = nic_mean_latencies(r.sched.machine().network());
  EXPECT_GE(lats.size(), 16u);  // at least the job's nodes tracked pairs
  for (const double l : lats) EXPECT_GT(l, 0.0);
}

}  // namespace
}  // namespace dfsim::monitor
