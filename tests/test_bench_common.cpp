// Units for the shared bench helpers (bench/common.hpp) — in particular the
// per-shard event-range reporting, whose previous open-coded min computation
// treated 0 as "unseeded" and so misreported the minimum whenever a shard
// legitimately executed zero events.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/common.hpp"

namespace dfsim {
namespace {

TEST(EventRange, EmptyIsZeroZero) {
  const bench::EventRange r = bench::event_range({});
  EXPECT_EQ(r.min, 0u);
  EXPECT_EQ(r.max, 0u);
}

TEST(EventRange, SingleElement) {
  const bench::EventRange r = bench::event_range({42});
  EXPECT_EQ(r.min, 42u);
  EXPECT_EQ(r.max, 42u);
}

TEST(EventRange, ZeroMinimumSurvivesLaterNonzeroCounts) {
  // The regression: a shard with 0 events followed by busy shards must
  // report min == 0, not the smallest nonzero count.
  const bench::EventRange r = bench::event_range({0, 190000, 5, 88000});
  EXPECT_EQ(r.min, 0u);
  EXPECT_EQ(r.max, 190000u);
}

TEST(EventRange, ZeroInTheMiddleAndEnd) {
  EXPECT_EQ(bench::event_range({7, 0, 9}).min, 0u);
  EXPECT_EQ(bench::event_range({7, 9, 0}).min, 0u);
  EXPECT_EQ(bench::event_range({3, 2, 8}).min, 2u);
  EXPECT_EQ(bench::event_range({3, 2, 8}).max, 8u);
}

TEST(BenchOptions, WorkersFlagFlowsIntoScenario) {
  bench::Options o;
  o.workers = 6;
  o.shards = 8;
  const core::ScenarioConfig cfg =
      o.production("MILC", 32, routing::Mode::kAd0);
  EXPECT_EQ(cfg.shards, 8);
  EXPECT_EQ(cfg.shard_workers, 6);
}

}  // namespace
}  // namespace dfsim
