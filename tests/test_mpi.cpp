// Unit tests: simulated MPI — matching, wildcards, waits, profiles, jobs.
#include <gtest/gtest.h>

#include "mpi/machine.hpp"

namespace dfsim::mpi {
namespace {

JobSpec spec_with(std::vector<topo::NodeId> nodes, JobSpec::AppFn app,
                  routing::Mode p2p = routing::Mode::kAd0) {
  JobSpec s;
  s.name = "test";
  s.nodes = std::move(nodes);
  s.app = std::move(app);
  s.mode_p2p = p2p;
  return s;
}

TEST(Machine, RejectsInvalidJobs) {
  Machine m(topo::Config::mini(2), 1);
  EXPECT_THROW(m.submit(spec_with({}, [](RankCtx&) { return CoTask{}; })),
               std::invalid_argument);
  JobSpec s;
  s.nodes = {0};
  EXPECT_THROW(m.submit(std::move(s)), std::invalid_argument);
  EXPECT_THROW(m.submit(spec_with({99999}, [](RankCtx& c) -> CoTask {
                 co_await c.compute(1);
               })),
               std::invalid_argument);
}

TEST(Machine, PingPongCompletes) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 1024, 7);
      co_await ctx.recv(1, 1024, 8);
    } else {
      co_await ctx.recv(0, 1024, 7);
      co_await ctx.send(0, 1024, 8);
    }
  };
  const JobId id = m.submit(spec_with({0, 1}, app));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
  EXPECT_TRUE(m.job(id).complete());
  EXPECT_GT(m.job(id).runtime(), 0);
}

TEST(Machine, UnexpectedMessagesMatchLater) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    if (ctx.rank() == 0) {
      // Send before the receiver posts.
      co_await ctx.send(1, 256, 5);
    } else {
      co_await ctx.compute(50 * sim::kMicrosecond);
      co_await ctx.recv(0, 256, 5);
    }
  };
  const JobId id = m.submit(spec_with({0, 1}, app));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
}

TEST(Machine, TagSelectivity) {
  Machine m(topo::Config::mini(2), 1);
  std::vector<int> order;
  auto app = [&order](RankCtx& ctx) -> CoTask {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 128, /*tag=*/1);
      co_await ctx.send(1, 128, /*tag=*/2);
    } else {
      // Receive tag 2 first even though tag 1 arrives first.
      co_await ctx.recv(0, 128, 2);
      order.push_back(2);
      co_await ctx.recv(0, 128, 1);
      order.push_back(1);
    }
  };
  const JobId id = m.submit(spec_with({0, 1}, app));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Machine, WildcardSourceReceives) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    const int n = ctx.nranks();
    if (ctx.rank() == 0) {
      for (int i = 1; i < n; ++i) co_await ctx.recv(kAnySource, 64, 3);
    } else {
      co_await ctx.send(0, 64, 3);
    }
  };
  const JobId id = m.submit(spec_with({0, 1, 2, 3}, app));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
}

TEST(Machine, WaitallGathersAll) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    const int n = ctx.nranks();
    const int me = ctx.rank();
    RequestList reqs;
    for (int i = 0; i < n; ++i) {
      if (i == me) continue;
      reqs.push_back(ctx.irecv(i, 512, 9));
      reqs.push_back(ctx.isend(i, 512, 9));
    }
    co_await ctx.waitall(std::move(reqs));
  };
  const JobId id = m.submit(spec_with({0, 1, 2, 3, 4, 5}, app));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
}

TEST(Machine, ProfileRecordsCallsAndBytes) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    if (ctx.rank() == 0) {
      Request r = ctx.isend(1, 1000, 1);
      co_await ctx.wait(std::move(r));
    } else {
      co_await ctx.recv(0, 1000, 1);
    }
  };
  const JobId id = m.submit(spec_with({0, 1}, app));
  const JobId w[] = {id};
  ASSERT_TRUE(m.run_to_completion(w));
  const Profile p = m.job_profile(id);
  EXPECT_EQ(p.stats(Op::kIsend).calls, 1);
  EXPECT_EQ(p.stats(Op::kIsend).bytes, 1000);
  EXPECT_EQ(p.stats(Op::kWait).calls, 1);
  EXPECT_EQ(p.stats(Op::kRecv).calls, 1);
  EXPECT_GT(p.stats(Op::kWait).time_ns, 0);
  EXPECT_GT(p.total_mpi_ns(), 0);
  const auto order = p.ops_by_time();
  EXPECT_FALSE(order.empty());
}

TEST(Machine, TwoConcurrentJobsAreIndependent) {
  Machine m(topo::Config::mini(4), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    // Uses the same tags in both jobs: matching must stay per-job.
    if (ctx.rank() == 0)
      co_await ctx.send(1, 4096, 1);
    else
      co_await ctx.recv(0, 4096, 1);
  };
  const JobId a = m.submit(spec_with({0, 1}, app));
  const JobId b = m.submit(spec_with({2, 3}, app));
  const JobId w[] = {a, b};
  EXPECT_TRUE(m.run_to_completion(w));
  EXPECT_TRUE(m.job(a).complete());
  EXPECT_TRUE(m.job(b).complete());
}

TEST(Machine, StaggeredStartTimes) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask { co_await ctx.compute(1000); };
  const JobId id = m.submit(spec_with({0}, app), 5 * sim::kMicrosecond);
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
  EXPECT_EQ(m.job(id).start_time, 5 * sim::kMicrosecond);
  EXPECT_EQ(m.job(id).runtime(), 1000);
}

TEST(Machine, StopRequestEndsOpenLoop) {
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    while (!ctx.stop_requested()) co_await ctx.compute(10 * sim::kMicrosecond);
  };
  const JobId bg = m.submit(spec_with({0, 1}, app));
  m.run_for(sim::kMillisecond);
  EXPECT_FALSE(m.job(bg).complete());
  m.request_stop(bg);
  const JobId w[] = {bg};
  EXPECT_TRUE(m.run_to_completion(w));
}

TEST(Machine, JobRoutersDeduplicated) {
  Machine m(topo::Config::mini(2), 1);
  // Nodes 0,1 share router 0 (2 nodes/router in mini).
  auto app = [](RankCtx& ctx) -> CoTask { co_await ctx.compute(1); };
  const JobId id = m.submit(spec_with({0, 1, 2}, app));
  const auto routers = m.job_routers(id);
  EXPECT_EQ(routers.size(), 2u);
}

TEST(Machine, RoutingModeReachesNetwork) {
  // AD3 job under a hot minimal path should take fewer non-minimal routes
  // than the same job under AD0 (checked at network stats level elsewhere);
  // here just check the mode plumbing through JobSpec.
  Machine m(topo::Config::mini(2), 1);
  auto app = [](RankCtx& ctx) -> CoTask {
    EXPECT_EQ(ctx.mode_p2p(), routing::Mode::kAd3);
    EXPECT_EQ(ctx.mode_a2a(), routing::Mode::kAd1);
    co_await ctx.compute(1);
  };
  JobSpec s = spec_with({0}, app, routing::Mode::kAd3);
  const JobId id = m.submit(std::move(s));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
}

TEST(Profile, MergeAccumulates) {
  Profile a, b;
  a.record(Op::kIsend, 100, 10);
  b.record(Op::kIsend, 50, 5);
  b.record(Op::kBarrier, 70, 0);
  a += b;
  EXPECT_EQ(a.stats(Op::kIsend).calls, 2);
  EXPECT_EQ(a.stats(Op::kIsend).bytes, 15);
  EXPECT_EQ(a.stats(Op::kBarrier).time_ns, 70);
  EXPECT_EQ(op_name(Op::kAlltoallv), "MPI_Alltoallv");
}

}  // namespace
}  // namespace dfsim::mpi
