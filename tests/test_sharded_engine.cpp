// Sharded execution contracts (docs/MODEL.md section 9).
//
// The tentpole property: for any shard count S >= 1, a sharded run is a
// pure function of the model — never of the shard count, the worker count,
// or thread timing. Shards {1, 2, 8} across multiple seeds and all four
// routing modes must produce byte-identical results, because
//  * the partition and lookahead depend only on the topology,
//  * each shard's window execution is serial over state only it touches,
//  * every cross-shard effect travels as mail merged in a canonical order.
//
// Also pinned here: the ShardPlan invariants (contiguity, coverage, the
// lookahead derivation) and the window-grid edge case — an event exactly at
// a barrier time belongs to the *following* window, which is what keeps the
// grid partition-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "core/experiment.hpp"
#include "routing/bias.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"
#include "topo/config.hpp"
#include "topo/dragonfly.hpp"
#include "topo/partition.hpp"

namespace dfsim {
namespace {

// --- ShardPlan --------------------------------------------------------------

TEST(ShardPlan, PartitionIsContiguousAndCovers) {
  const topo::Dragonfly topo(topo::Config::theta_scaled());
  const int groups = topo.config().groups;
  for (const int req : {1, 2, 3, 8, groups, groups + 5}) {
    SCOPED_TRACE(req);
    const auto plan = topo::ShardPlan::build(topo, req);
    EXPECT_GE(plan.shards, 1);
    EXPECT_LE(plan.shards, groups);
    // Group assignment is non-decreasing (contiguous ranges) and every
    // shard owns at least one group.
    std::vector<int> count(static_cast<std::size_t>(plan.shards), 0);
    int prev = 0;
    for (int g = 0; g < groups; ++g) {
      const int s = plan.shard_of_group[static_cast<std::size_t>(g)];
      EXPECT_GE(s, prev);
      EXPECT_LT(s, plan.shards);
      ++count[static_cast<std::size_t>(s)];
      prev = s;
    }
    for (const int c : count) EXPECT_GE(c, 1);
    // Routers and nodes inherit their group's shard.
    for (topo::RouterId r = 0; r < topo.config().num_routers(); ++r)
      EXPECT_EQ(plan.shard_of_router[static_cast<std::size_t>(r)],
                plan.shard_of_group[static_cast<std::size_t>(
                    topo.group_of_router(r))]);
    for (topo::NodeId n = 0; n < topo.config().num_nodes(); ++n)
      EXPECT_EQ(plan.shard_of_node[static_cast<std::size_t>(n)],
                plan.shard_of_router[static_cast<std::size_t>(
                    topo.router_of_node(n))]);
  }
}

TEST(ShardPlan, LookaheadIsMinRank3HopAndShardCountIndependent) {
  const topo::Dragonfly topo(topo::Config::theta());
  const auto& cfg = topo.config();
  const auto p1 = topo::ShardPlan::build(topo, 1);
  const auto p8 = topo::ShardPlan::build(topo, 8);
  // Theta: 500 ns optical link + 100 ns router pipeline.
  EXPECT_EQ(p1.lookahead, cfg.link_latency_global + cfg.router_latency);
  // The window grid must be identical for every shard count.
  EXPECT_EQ(p1.lookahead, p8.lookahead);
}

TEST(ShardPlan, BuildWeightedKeepsInvariantsAndNeverLosesToCountSplit) {
  const topo::Dragonfly topo(topo::Config::theta_scaled());
  const int groups = topo.config().groups;
  // A skewed estimate: two hot groups, a warm one, and a cold tail — the
  // shape a compact background fill actually produces.
  std::vector<std::uint64_t> w(static_cast<std::size_t>(groups), 0);
  w[0] = 60;
  w[1] = 25;
  w[static_cast<std::size_t>(groups / 2)] = 10;
  for (const int req : {1, 2, 3, 8, groups, groups + 5}) {
    SCOPED_TRACE(req);
    const auto plan = topo::ShardPlan::build_weighted(topo, req, w);
    const auto count = topo::ShardPlan::build(topo, req);
    EXPECT_EQ(plan.shards, count.shards);
    // Same structural invariants as the count split: contiguous,
    // covering, every shard non-empty, routers/nodes inherit the group.
    std::vector<int> owned(static_cast<std::size_t>(plan.shards), 0);
    int prev = 0;
    for (int g = 0; g < groups; ++g) {
      const int s = plan.shard_of_group[static_cast<std::size_t>(g)];
      EXPECT_GE(s, prev);
      EXPECT_LT(s, plan.shards);
      ++owned[static_cast<std::size_t>(s)];
      prev = s;
    }
    for (const int c : owned) EXPECT_GE(c, 1);
    for (topo::RouterId r = 0; r < topo.config().num_routers(); ++r)
      EXPECT_EQ(plan.shard_of_router[static_cast<std::size_t>(r)],
                plan.shard_of_group[static_cast<std::size_t>(
                    topo.group_of_router(r))]);
    // The window grid never depends on where the boundaries fall.
    EXPECT_EQ(plan.lookahead, count.lookahead);
    // The exact min-max DP can never do worse than the count-balanced
    // boundaries on the weights it optimized for.
    EXPECT_LE(plan.imbalance(w), count.imbalance(w) + 1e-12);
  }
}

TEST(ShardPlan, BuildWeightedIsolatesADominantGroup) {
  const topo::Dragonfly topo(topo::Config::theta_scaled());
  const int groups = topo.config().groups;
  ASSERT_GE(groups, 4);
  // One group carries (nearly) all the traffic: the optimal contiguous
  // min-max split gives it a shard of its own instead of dragging its
  // whole count-balanced block onto one executor.
  std::vector<std::uint64_t> w(static_cast<std::size_t>(groups), 0);
  w[0] = 10'000;
  const auto plan = topo::ShardPlan::build_weighted(topo, 4, w);
  int in_shard0 = 0;
  for (int g = 0; g < groups; ++g)
    if (plan.shard_of_group[static_cast<std::size_t>(g)] == 0) ++in_shard0;
  EXPECT_EQ(in_shard0, 1);
}

TEST(ShardPlan, BuildWeightedDegradesToEvenBlocksWithoutSignal) {
  const topo::Dragonfly topo(topo::Config::theta_scaled());
  const int groups = topo.config().groups;
  // All-zero (and wrong-length) weight vectors mean "no estimate": blocks
  // must stay size-balanced, not collapse into degenerate splits.
  for (const auto& w : {std::vector<std::uint64_t>{},
                        std::vector<std::uint64_t>(
                            static_cast<std::size_t>(groups), 0)}) {
    const auto plan = topo::ShardPlan::build_weighted(topo, 3, w);
    std::vector<int> owned(3, 0);
    for (int g = 0; g < groups; ++g)
      ++owned[static_cast<std::size_t>(
          plan.shard_of_group[static_cast<std::size_t>(g)])];
    const auto [mn, mx] = std::minmax_element(owned.begin(), owned.end());
    EXPECT_LE(*mx - *mn, 1);
  }
}

// --- Window grid edge cases -------------------------------------------------

TEST(ShardedEngine, EventExactlyAtBarrierRunsInFollowingWindow) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  // Per-shard logs: same-window events on different shards may execute on
  // different worker threads concurrently, so each shard writes only its
  // own vector (main reads them after run(), past the final barrier).
  std::vector<sim::Tick> fired0, fired1;
  // now() observed by an event tells us which window executed it: windows
  // advance every shard's clock to the barrier, so an event at t == barrier
  // executing in the *following* window still sees now() == its own time,
  // but the barrier count proves where it ran.
  se.shard(0).schedule_at(0, [&] { fired0.push_back(se.shard(0).now()); });
  se.shard(0).schedule_at(100, [&] { fired0.push_back(se.shard(0).now()); });
  se.shard(1).schedule_at(100, [&] { fired1.push_back(se.shard(1).now()); });
  se.run();
  ASSERT_EQ(fired0.size(), 2u);
  ASSERT_EQ(fired1.size(), 1u);
  EXPECT_EQ(fired0[0], 0);
  EXPECT_EQ(fired0[1], 100);
  EXPECT_EQ(fired1[0], 100);
  // Window 1 covered [0, 100) — only the t=0 event; the t=100 events needed
  // a second window [100, 200). Both shards' clocks end at the last barrier.
  EXPECT_EQ(se.stats().windows, 2u);
  EXPECT_EQ(se.shard(0).now(), 200);
  EXPECT_EQ(se.shard(1).now(), 200);
}

TEST(ShardedEngine, BoundedRunClosesFinalWindowAtLimit) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  bool at_limit = false;
  se.shard(1).schedule_at(250, [&] { at_limit = true; });
  se.run_until(250);
  // 250 is not on the lookahead grid: the final window is clamped to the
  // limit and closed (inclusive), so the event runs and every clock ends
  // exactly at the limit.
  EXPECT_TRUE(at_limit);
  EXPECT_EQ(se.shard(0).now(), 250);
  EXPECT_EQ(se.shard(1).now(), 250);
}

TEST(ShardedEngine, MailDeliversInCanonicalOrderAtBarrier) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  std::vector<std::int64_t> keys;
  se.set_mail_handler([&](int dst, std::span<sim::MailRecord> recs) {
    EXPECT_EQ(dst, 1);
    for (const auto& r : recs) keys.push_back(r.key);
  });
  se.shard(0).schedule_at(10, [&] {
    // Posted out of key order, same due time: the barrier merge sorts them.
    sim::MailRecord rec;
    rec.due = 10;
    rec.key = 7;
    se.post_mail(0, 1, rec);
    rec.key = 3;
    se.post_mail(0, 1, rec);
  });
  se.run();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 3);
  EXPECT_EQ(keys[1], 7);
}

// --- Byte-identity across shard counts --------------------------------------

bool same_bytes(const net::CounterSnapshot& a, const net::CounterSnapshot& b) {
  return std::memcmp(&a, &b, sizeof(net::CounterSnapshot)) == 0;
}

core::ProductionConfig small_theta(std::uint64_t seed, routing::Mode mode,
                                   int shards) {
  core::ProductionConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.mode = mode;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = 0.1;
  cfg.seed = seed;
  cfg.shards = shards;
  return cfg;
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_TRUE(a.ok) << a.fail_reason;
  ASSERT_TRUE(b.ok) << b.fail_reason;
  EXPECT_TRUE(same_bytes(a.global, b.global));
  EXPECT_EQ(a.netstats.total_hops, b.netstats.total_hops);
  EXPECT_EQ(a.netstats.minimal_decisions, b.netstats.minimal_decisions);
  EXPECT_EQ(a.netstats.nonminimal_decisions, b.netstats.nonminimal_decisions);
  EXPECT_EQ(a.netstats.packets_injected, b.netstats.packets_injected);
  EXPECT_EQ(a.netstats.packets_delivered, b.netstats.packets_delivered);
  EXPECT_EQ(a.netstats.escapes, b.netstats.escapes);
  for (std::size_t m = 0; m < static_cast<std::size_t>(routing::kNumModes);
       ++m) {
    EXPECT_EQ(a.netstats.decisions_by_mode[m][0],
              b.netstats.decisions_by_mode[m][0]);
    EXPECT_EQ(a.netstats.decisions_by_mode[m][1],
              b.netstats.decisions_by_mode[m][1]);
  }
  // Same events on the same (logical) engines: even the executed event
  // count is partition-independent.
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.runtime_ms, b.runtime_ms);
}

TEST(ShardedDeterminism, ByteIdenticalAcrossShardCountsAllModes) {
  for (const auto mode : {routing::Mode::kAd0, routing::Mode::kAd1,
                          routing::Mode::kAd2, routing::Mode::kAd3}) {
    SCOPED_TRACE(static_cast<int>(mode));
    const core::RunResult base =
        core::run_production(small_theta(2027, mode, 1));
    ASSERT_TRUE(base.ok) << base.fail_reason;
    EXPECT_GT(base.netstats.packets_delivered, 0);
    for (const int shards : {2, 8}) {
      SCOPED_TRACE(shards);
      expect_identical(base,
                       core::run_production(small_theta(2027, mode, shards)));
    }
  }
}

TEST(ShardedDeterminism, ByteIdenticalAcrossShardCountsAndSeeds) {
  for (const std::uint64_t seed : {7ULL, 41ULL, 1999ULL}) {
    SCOPED_TRACE(seed);
    const core::RunResult base =
        core::run_production(small_theta(seed, routing::Mode::kAd0, 1));
    ASSERT_TRUE(base.ok) << base.fail_reason;
    for (const int shards : {2, 8}) {
      SCOPED_TRACE(shards);
      expect_identical(base, core::run_production(small_theta(
                                 seed, routing::Mode::kAd0, shards)));
    }
  }
}

TEST(ShardedDeterminism, WorkerCountNeverAffectsResults) {
  // Same shard count, different executor counts: results must not change.
  // (resolve via the env override the sharded engine reads at construction)
  const core::RunResult two_workers =
      core::run_production(small_theta(99, routing::Mode::kAd2, 4));
  setenv("DFSIM_SHARD_WORKERS", "1", 1);
  const core::RunResult one_worker =
      core::run_production(small_theta(99, routing::Mode::kAd2, 4));
  unsetenv("DFSIM_SHARD_WORKERS");
  expect_identical(two_workers, one_worker);
}

TEST(ShardedDeterminism, WorkerMatrixByteIdenticalUnderActiveFaults) {
  // workers {1, 2, 4, 8} x shards {4, 8} with a live fault plan (a failed
  // link, a degraded link, and a repair all inside the run window): fault
  // application rides the global-event path, so this pins that the fused
  // barrier protocol and the executor count never shift where faults land.
  fault::FaultPlan plan;
  plan.fail_link(40 * sim::kMicrosecond, 3, 1)
      .degrade_link(60 * sim::kMicrosecond, 5, 0, 0.5)
      .repair(120 * sim::kMicrosecond, 3, 1);
  auto scenario = [&](int shards, int workers) {
    core::ProductionConfig cfg = small_theta(77, routing::Mode::kAd3, shards);
    cfg.shard_workers = workers;
    cfg.faults = plan;
    return cfg;
  };
  for (const int shards : {4, 8}) {
    SCOPED_TRACE(shards);
    const core::RunResult base = core::run_production(scenario(shards, 1));
    ASSERT_TRUE(base.ok) << base.fail_reason;
    EXPECT_GT(base.faults.faults_applied, 0);
    for (const int workers : {2, 4, 8}) {
      SCOPED_TRACE(workers);
      const core::RunResult r = core::run_production(scenario(shards, workers));
      // The request is honoured (clamped by shards alone, never the host).
      EXPECT_EQ(r.shard_exec.workers, std::min(workers, shards));
      EXPECT_EQ(r.shard_exec.workers_requested, workers);
      expect_identical(base, r);
    }
  }
}

TEST(ShardedDeterminism, BalancedPlanNeverAffectsResultsOnSkewedPlacements) {
  // The load-aware partition moves shard boundaries, never results: for
  // background placements that concentrate load (compact) and spread it
  // (random), every (shards, balance) point must reproduce the 1-shard
  // run byte for byte. This is the guarantee that lets the balancer be
  // pure wall-clock policy.
  for (const auto placement :
       {sched::BgPlacement::kCompact, sched::BgPlacement::kRandom}) {
    SCOPED_TRACE(static_cast<int>(placement));
    for (const auto mode : {routing::Mode::kAd0, routing::Mode::kAd1,
                            routing::Mode::kAd2, routing::Mode::kAd3}) {
      SCOPED_TRACE(static_cast<int>(mode));
      auto scenario = [&](int shards, bool balance) {
        core::ProductionConfig cfg = small_theta(311, mode, shards);
        cfg.bg_utilization = 0.3;  // enough fill for real skew
        cfg.bg_placement = placement;
        cfg.shard_balance = balance;
        return cfg;
      };
      const core::RunResult base = core::run_production(scenario(1, true));
      ASSERT_TRUE(base.ok) << base.fail_reason;
      EXPECT_GT(base.netstats.packets_delivered, 0);
      for (const int shards : {2, 8}) {
        for (const bool balance : {true, false}) {
          SCOPED_TRACE(shards * 10 + (balance ? 1 : 0));
          expect_identical(base, core::run_production(scenario(shards, balance)));
        }
      }
    }
  }
}

TEST(ShardedDeterminism, BalancedPlanSurvivesFaultsAndWorkerWidths) {
  // Balance on/off x workers {1, 4} with a live fault plan: boundary
  // placement must not shift where global fault events land.
  fault::FaultPlan plan;
  plan.fail_link(40 * sim::kMicrosecond, 3, 1)
      .degrade_link(60 * sim::kMicrosecond, 5, 0, 0.5)
      .repair(120 * sim::kMicrosecond, 3, 1);
  auto scenario = [&](bool balance, int workers) {
    core::ProductionConfig cfg = small_theta(77, routing::Mode::kAd3, 8);
    cfg.bg_placement = sched::BgPlacement::kCompact;
    cfg.shard_balance = balance;
    cfg.shard_workers = workers;
    cfg.faults = plan;
    return cfg;
  };
  const core::RunResult base = core::run_production(scenario(true, 1));
  ASSERT_TRUE(base.ok) << base.fail_reason;
  EXPECT_GT(base.faults.faults_applied, 0);
  for (const bool balance : {true, false})
    for (const int workers : {1, 4}) {
      SCOPED_TRACE((balance ? 10 : 0) + workers);
      expect_identical(base, core::run_production(scenario(balance, workers)));
    }
}

TEST(ShardedDeterminism, InlineMergeIsWallClockOnly) {
  // In-run merges (the deciding executor merging a mail-bearing barrier
  // inline instead of round-tripping to the coordinator) are a pure
  // scheduling change: results, the window sequence, and the merge count
  // are all byte-identical; only the fused-window counter may move.
  core::ProductionConfig cfg = small_theta(2027, routing::Mode::kAd2, 4);
  cfg.bg_utilization = 0.3;
  cfg.shard_workers = 2;
  const core::RunResult on = core::run_production(cfg);
  cfg.shard_inline_merge = false;
  const core::RunResult off = core::run_production(cfg);
  expect_identical(on, off);
  EXPECT_EQ(on.shard_exec.windows, off.shard_exec.windows);
  EXPECT_EQ(on.shard_exec.merges, off.shard_exec.merges);
  EXPECT_EQ(on.shard_exec.mail_records, off.shard_exec.mail_records);
  EXPECT_EQ(on.shard_exec.shard_events, off.shard_exec.shard_events);
  // Inline merges fuse mail-bearing barriers the legacy path cannot.
  EXPECT_GT(on.shard_exec.merges, 0u);
  EXPECT_GT(on.shard_exec.windows_fused, off.shard_exec.windows_fused);
  EXPECT_LE(on.shard_exec.windows_fused, on.shard_exec.windows);
}

TEST(ShardedDeterminism, ExecStatsAreHonestOnEveryPath) {
  // Single-worker run: barrier_wait is legitimately ~0 (the sole executor
  // is always the barrier's decider), but coordination time — merges,
  // window planning — must still be accounted, not hidden.
  core::ProductionConfig cfg = small_theta(13, routing::Mode::kAd0, 4);
  cfg.shard_workers = 1;
  const core::RunResult one = core::run_production(cfg);
  ASSERT_TRUE(one.ok) << one.fail_reason;
  EXPECT_EQ(one.shard_exec.workers, 1);
  EXPECT_GT(one.shard_exec.coord_ns, 0);
  EXPECT_GT(one.shard_exec.merges, 0u);
  EXPECT_GE(one.shard_exec.windows, one.shard_exec.merges);
  ASSERT_EQ(one.shard_exec.executor_busy_ns.size(), 1u);
  EXPECT_GT(one.shard_exec.executor_busy_ns[0], 0);
  // Compaction is live on the production path: fewer records merged than
  // posted, with the difference fully accounted.
  EXPECT_GT(one.shard_exec.mail_posted, one.shard_exec.mail_records);
  EXPECT_EQ(one.shard_exec.mail_posted - one.shard_exec.mail_compacted,
            one.shard_exec.mail_records);

  // Threaded run: per-executor stats sized to the effective worker count.
  cfg.shard_workers = 3;
  const core::RunResult three = core::run_production(cfg);
  ASSERT_TRUE(three.ok) << three.fail_reason;
  EXPECT_EQ(three.shard_exec.workers, 3);
  ASSERT_EQ(three.shard_exec.executor_busy_ns.size(), 3u);
  ASSERT_EQ(three.shard_exec.executor_wait_ns.size(), 3u);
  expect_identical(one, three);
}

TEST(ShardedDeterminism, ControlledEnsembleWithLdmsIsShardCountInvariant) {
  core::EnsembleConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.app = "MILC";
  cfg.njobs = 2;
  cfg.nnodes = 8;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = 5;
  cfg.seed = 5;
  cfg.ldms_period = 50 * sim::kMicrosecond;

  cfg.shards = 1;
  const core::EnsembleResult a = core::run_controlled(cfg);
  cfg.shards = 2;
  const core::EnsembleResult b = core::run_controlled(cfg);

  ASSERT_TRUE(a.ok) << a.fail_reason;
  ASSERT_TRUE(b.ok) << b.fail_reason;
  EXPECT_EQ(a.runtimes_ms, b.runtimes_ms);
  EXPECT_TRUE(same_bytes(a.total, b.total));
  ASSERT_EQ(a.ldms.size(), b.ldms.size());
  EXPECT_GT(a.ldms.size(), 1u) << "LDMS sampled nothing";
  for (std::size_t i = 0; i < a.ldms.size(); ++i) {
    EXPECT_EQ(a.ldms[i].t, b.ldms[i].t);
    EXPECT_TRUE(same_bytes(a.ldms[i].cumulative, b.ldms[i].cumulative));
  }
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// --- Adaptive coordination (fused windows) ----------------------------------

TEST(ShardedEngine, MailFreeBarriersFuseWithoutMerging) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  int fired = 0;
  // Four consecutive windows' worth of events, no mail anywhere: the
  // executors fuse straight through and the coordinator merges exactly once
  // (at the final, idle barrier).
  for (const sim::Tick t : {10, 110, 210, 310})
    se.shard(t % 200 == 10 ? 0 : 1).schedule_at(t, [&] { ++fired; });
  se.run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(se.stats().windows, 4u);
  EXPECT_EQ(se.stats().merges, 1u);
}

TEST(ShardedEngine, MailSnapsTheFusedRunBackToTheCoordinator) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  std::vector<sim::Tick> delivered;
  se.set_mail_handler([&](int, std::span<sim::MailRecord> recs) {
    for (const auto& r : recs) delivered.push_back(r.due);
  });
  // Window [0,100) posts mail — the run must end at that barrier so the
  // mail is delivered there, not fused past.
  se.shard(0).schedule_at(10, [&] {
    sim::MailRecord rec;
    rec.due = 110;
    rec.key = 1;
    se.post_mail(0, 1, rec);
  });
  se.shard(1).schedule_at(310, [] {});
  se.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 110);
  // At least two merges: the mail-bearing barrier plus the final idle one —
  // and never more merges than windows.
  EXPECT_GE(se.stats().merges, 2u);
  EXPECT_LE(se.stats().merges, se.stats().windows);
}

TEST(ShardedEngine, PostMailAccumFoldsSameKeyRecords) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  std::vector<sim::MailRecord> got;
  se.set_mail_handler([&](int, std::span<sim::MailRecord> recs) {
    got.insert(got.end(), recs.begin(), recs.end());
  });
  se.shard(0).schedule_at(10, [&] {
    sim::MailRecord rec;
    rec.kind = 3;
    rec.key = 42;
    rec.due = 10;
    rec.a = 100;
    se.post_mail_accum(0, 1, rec);
    rec.due = 20;
    rec.a = 50;
    se.post_mail_accum(0, 1, rec);  // folds into the first
    rec.key = 43;
    rec.a = 7;
    se.post_mail_accum(0, 1, rec);  // distinct key: own record
    rec.key = 42;
    rec.due = 30;
    rec.a = 25;
    se.post_mail_accum(0, 1, rec);  // folds again
  });
  se.run();
  ASSERT_EQ(got.size(), 2u);
  // Delivery is due-ordered: the unfolded key-43 record (due 20) sorts
  // before the folded key-42 record, which carries the summed payload and
  // the due/seq of its final increment (due 30).
  EXPECT_EQ(got[0].key, 43);
  EXPECT_EQ(got[0].a, 7);
  EXPECT_EQ(got[0].due, 20);
  EXPECT_EQ(got[1].key, 42);
  EXPECT_EQ(got[1].a, 100 + 50 + 25);
  EXPECT_EQ(got[1].due, 30);
  EXPECT_EQ(se.stats().mail_posted, 4u);
  EXPECT_EQ(se.stats().mail_compacted, 2u);
  EXPECT_EQ(se.stats().mail_records, 2u);
}

TEST(ShardedEngine, InlineMergeABKeepsDeliveryWindowsAndMergesIdentical) {
  // Raw-engine A/B of the in-run merge path: a mail-bearing barrier, a
  // second round of mail, and a long idle stretch. Both settings must
  // deliver the same records and count the same windows and merges; the
  // inline run fuses at least as many windows (it can fuse through the
  // mail-bearing barriers, the legacy path only through empty ones).
  struct Obs {
    std::vector<sim::Tick> delivered;
    std::uint64_t windows = 0, merges = 0, fused = 0;
  };
  auto run_one = [&](bool inline_on) {
    sim::ShardedEngine se(2, /*lookahead=*/100);
    se.set_inline_merge(inline_on);
    Obs obs;
    se.set_mail_handler([&](int, std::span<sim::MailRecord> recs) {
      for (const auto& r : recs) obs.delivered.push_back(r.due);
    });
    se.shard(0).schedule_at(10, [&] {
      sim::MailRecord rec;
      rec.due = 110;
      rec.key = 1;
      se.post_mail(0, 1, rec);
    });
    se.shard(1).schedule_at(230, [&] {
      sim::MailRecord rec;
      rec.due = 340;
      rec.key = 2;
      se.post_mail(1, 0, rec);
    });
    se.shard(0).schedule_at(710, [] {});
    se.run();
    obs.windows = se.stats().windows;
    obs.merges = se.stats().merges;
    obs.fused = se.stats().fused;
    return obs;
  };
  const Obs on = run_one(true);
  const Obs off = run_one(false);
  EXPECT_EQ(on.delivered, (std::vector<sim::Tick>{110, 340}));
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_EQ(on.windows, off.windows);
  EXPECT_EQ(on.merges, off.merges);
  EXPECT_GE(on.fused, off.fused);
  EXPECT_GT(on.fused, 0u);
}

TEST(ShardedEngine, GlobalsRunInTimeThenRegistrationOrder) {
  sim::ShardedEngine se(2, /*lookahead=*/100);
  std::vector<int> order;
  // Registered out of time order, including a same-time pair whose
  // registration order must break the tie — the heap replacement for the
  // sorted vector must preserve the exact (t, seq) pop order.
  se.schedule_global(250, [&] { order.push_back(4); });
  se.schedule_global(50, [&] { order.push_back(1); });
  se.schedule_global(150, [&] { order.push_back(2); });
  se.schedule_global(150, [&] { order.push_back(3); });
  se.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ShardedDeterminism, SerialModeIsDefaultAndDistinct) {
  // shards = 0 is the untouched legacy serial engine; it is deterministic
  // in itself (pinned by the existing determinism suite) but follows a
  // different — equally valid — schedule than the sharded family, which
  // uses per-group RNG streams and credit-based rank-3 flow control.
  core::ProductionConfig serial = small_theta(11, routing::Mode::kAd0, 0);
  const core::RunResult s1 = core::run_production(serial);
  const core::RunResult s2 = core::run_production(serial);
  expect_identical(s1, s2);
}

}  // namespace
}  // namespace dfsim
