// Forwarding-plane hot-path contracts.
//
// Two properties the allocation-free rework must keep holding:
//
//  1. Steady-state forwarding performs ZERO heap allocations. A counting
//     operator new instruments this whole binary; a closed-loop workload
//     (messages re-sent from their own delivery callbacks, no MPI/app
//     layer) drives the full scaled-Theta network, and after a warmup
//     window that reaches every pool's high-water mark, the measured
//     window must not allocate at all. Release-gated: the pools behave
//     identically in Debug, but the run is assert-heavy and slow there.
//
//  2. Event coalescing is a pure performance transform. The fused per-hop
//     and per-injection event pairs keep their original insertion sequence
//     (EventQueue::rearm_current), so a coalesced run and an unfused run
//     must be byte-identical in every counter, decision split, event count,
//     and simulated runtime (see docs/MODEL.md, "Forwarding-plane memory
//     layout & event coalescing").
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "routing/bias.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "topo/config.hpp"
#include "topo/dragonfly.hpp"

// --- counting allocator (whole binary) -------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dfsim {
namespace {

// --- 1. zero steady-state allocations --------------------------------------

/// Closed-loop traffic source: each flow keeps exactly one message in
/// flight, re-sent from its own delivery callback, so the network stays
/// saturated without any app-layer (coroutine/shared_ptr) machinery.
struct ClosedLoop {
  net::Network& net;
  std::vector<topo::NodeId> src, dst;

  void kick(int i) {
    net.send_message(src[static_cast<std::size_t>(i)],
                     dst[static_cast<std::size_t>(i)], 64 * 1024,
                     routing::Mode::kAd0, [this, i] { kick(i); });
  }
};

TEST(ForwardingPlane, SteadyStateDoesNotAllocate) {
#ifndef NDEBUG
  GTEST_SKIP() << "allocation budget is pinned on Release builds";
#endif
  topo::Config cfg = topo::Config::theta_scaled();
  cfg.packet_payload_bytes = 4096;
  cfg.buffer_flits = 2048;
  const topo::Dragonfly topo(cfg);
  sim::Engine eng;
  net::Network net(eng, topo, 2021);

  constexpr int kFlows = 128;
  // Pre-size every pool past its workload bound so "zero allocations" is a
  // deterministic property of the steady state, not a warmup race.
  eng.reserve_events(1u << 16);
  net.reserve(static_cast<std::size_t>(kFlows) * 64, 2 * kFlows, 1u << 14);

  ClosedLoop loop{net, {}, {}};
  sim::Rng rng(0x5757575757575757ULL);
  const auto nodes = static_cast<std::uint64_t>(cfg.num_nodes());
  for (int i = 0; i < kFlows; ++i) {
    const auto s = static_cast<topo::NodeId>(rng.uniform_u64(nodes));
    auto d = static_cast<topo::NodeId>(rng.uniform_u64(nodes));
    if (d == s) d = static_cast<topo::NodeId>((d + 1) % cfg.num_nodes());
    loop.src.push_back(s);
    loop.dst.push_back(d);
  }
  for (int i = 0; i < kFlows; ++i) loop.kick(i);

  // Warmup: grow every pool to its high-water mark.
  eng.run_until(sim::kMillisecond);
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t e0 = eng.events_executed();

  eng.run_until(2 * sim::kMillisecond);

  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  const std::uint64_t events = eng.events_executed() - e0;
  EXPECT_GT(events, 500'000u) << "workload too small to be meaningful";
  EXPECT_GT(net.stats().packets_delivered, 0);
  EXPECT_EQ(allocs, 0u)
      << "forwarding plane allocated in steady state across " << events
      << " events";
}

// --- 2. coalesced vs unfused event path ------------------------------------

/// CounterSnapshot is an all-int64 aggregate: byte equality is exact
/// equality, and the strongest statement of "same simulation".
bool same_bytes(const net::CounterSnapshot& a, const net::CounterSnapshot& b) {
  return std::memcmp(&a, &b, sizeof(net::CounterSnapshot)) == 0;
}

core::ProductionConfig small_theta(std::uint64_t seed) {
  core::ProductionConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = 0.1;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(same_bytes(a.global, b.global));
  EXPECT_EQ(a.netstats.total_hops, b.netstats.total_hops);
  EXPECT_EQ(a.netstats.minimal_decisions, b.netstats.minimal_decisions);
  EXPECT_EQ(a.netstats.nonminimal_decisions, b.netstats.nonminimal_decisions);
  EXPECT_EQ(a.netstats.packets_injected, b.netstats.packets_injected);
  EXPECT_EQ(a.netstats.packets_delivered, b.netstats.packets_delivered);
  EXPECT_EQ(a.netstats.escapes, b.netstats.escapes);
  // A fused pair still fires twice (schedule + rearm), so even the executed
  // event count must match the unfused path exactly.
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.runtime_ms, b.runtime_ms);
}

TEST(ForwardingPlane, CoalescingIsByteIdentical) {
  core::ProductionConfig fused = small_theta(2021);
  core::ProductionConfig unfused = fused;
  unfused.coalesce_events = false;

  const core::RunResult a = core::run_production(fused);
  const core::RunResult b = core::run_production(unfused);
  expect_identical(a, b);
  ASSERT_TRUE(a.ok);
  EXPECT_GT(a.netstats.packets_delivered, 0);
}

TEST(ForwardingPlane, CoalescingIsByteIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {7ULL, 1999ULL}) {
    SCOPED_TRACE(seed);
    core::ProductionConfig fused = small_theta(seed);
    core::ProductionConfig unfused = fused;
    unfused.coalesce_events = false;
    expect_identical(core::run_production(fused),
                     core::run_production(unfused));
  }
}

}  // namespace
}  // namespace dfsim
