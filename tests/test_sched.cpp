// Unit tests: placement policies, allocator, workload model, scheduler.
#include <gtest/gtest.h>

#include <set>

#include "sched/placement.hpp"
#include "topo/dragonfly.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace dfsim::sched {
namespace {

TEST(NodeAllocator, CompactPacksLowIds) {
  const topo::Dragonfly d(topo::Config::mini(4));
  NodeAllocator a(d);
  sim::Rng rng(1);
  const auto nodes = a.allocate(8, Placement::kCompact, rng);
  ASSERT_EQ(nodes.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(nodes[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(d.groups_spanned(nodes), 1);
  EXPECT_EQ(a.free_count(), d.config().num_nodes() - 8);
}

TEST(NodeAllocator, AllocationsAreDisjoint) {
  const topo::Dragonfly d(topo::Config::mini(4));
  NodeAllocator a(d);
  sim::Rng rng(2);
  std::set<topo::NodeId> seen;
  for (int j = 0; j < 6; ++j) {
    const auto nodes = a.allocate(8, Placement::kRandom, rng);
    ASSERT_EQ(nodes.size(), 8u);
    for (const auto n : nodes) EXPECT_TRUE(seen.insert(n).second);
  }
  EXPECT_DOUBLE_EQ(a.utilization(), 48.0 / d.config().num_nodes());
}

TEST(NodeAllocator, ReleaseReturnsCapacity) {
  const topo::Dragonfly d(topo::Config::mini(2));
  NodeAllocator a(d);
  sim::Rng rng(3);
  const auto nodes = a.allocate(10, Placement::kRandom, rng);
  a.release(nodes);
  EXPECT_EQ(a.free_count(), d.config().num_nodes());
  // Double release is harmless.
  a.release(nodes);
  EXPECT_EQ(a.free_count(), d.config().num_nodes());
}

TEST(NodeAllocator, FailsWhenFull) {
  const topo::Dragonfly d(topo::Config::mini(2));
  NodeAllocator a(d);
  sim::Rng rng(4);
  EXPECT_TRUE(a.allocate(d.config().num_nodes(), Placement::kCompact, rng)
                  .size() > 0);
  EXPECT_TRUE(a.allocate(1, Placement::kCompact, rng).empty());
  EXPECT_TRUE(a.allocate(1, Placement::kRandom, rng).empty());
  EXPECT_TRUE(a.allocate(0, Placement::kCompact, rng).empty());
}

TEST(NodeAllocator, GroupsPlacementSpansTarget) {
  const topo::Dragonfly d(topo::Config::mini(8));
  NodeAllocator a(d);
  sim::Rng rng(5);
  for (const int target : {1, 2, 4, 8}) {
    const auto nodes = a.allocate(8, Placement::kGroups, rng, target);
    ASSERT_EQ(nodes.size(), 8u) << target;
    EXPECT_EQ(d.groups_spanned(nodes), target);
    a.release(nodes);
  }
}

TEST(NodeAllocator, GroupsPlacementGrowsWhenTooSmall) {
  const topo::Dragonfly d(topo::Config::mini(4));
  NodeAllocator a(d);
  sim::Rng rng(6);
  const int npg = d.config().nodes_per_group();
  // Request more nodes than one group holds with target 1: must widen.
  const auto nodes = a.allocate(npg + 4, Placement::kGroups, rng, 1);
  ASSERT_FALSE(nodes.empty());
  EXPECT_GE(d.groups_spanned(nodes), 2);
}

TEST(NodeAllocator, RandomScattersAcrossGroups) {
  const topo::Dragonfly d(topo::Config::mini(8));
  NodeAllocator a(d);
  sim::Rng rng(7);
  const auto nodes = a.allocate(32, Placement::kRandom, rng);
  EXPECT_GE(d.groups_spanned(nodes), 4);  // 32 of 256 nodes over 8 groups
}

TEST(WorkloadModel, JobSizesFollowMix) {
  const WorkloadModel m(1.0);
  sim::Rng rng(8);
  int small = 0, large = 0;
  for (int i = 0; i < 2000; ++i) {
    const int s = m.sample_job_size(rng);
    EXPECT_GE(s, 2);
    EXPECT_LE(s, 4392);
    if (s <= 512) ++small;
    if (s >= 2048) ++large;
  }
  // Sampling by job count: small jobs dominate counts.
  EXPECT_GT(small, 1000);
  EXPECT_LT(large, 400);
}

TEST(WorkloadModel, SizeScaleShrinksJobs) {
  const WorkloadModel m(0.1);
  sim::Rng rng(9);
  for (int i = 0; i < 200; ++i) EXPECT_LE(m.sample_job_size(rng), 440);
}

TEST(WorkloadModel, MixCoversPatterns) {
  const WorkloadModel m(1.0);
  sim::Rng rng(10);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(m.sample_pattern(rng));
  EXPECT_GE(seen.size(), 3u);
  const auto t = m.sample_traffic(rng);
  EXPECT_GE(t.msg_bytes, 4096);
  EXPECT_GT(t.compute_ns, 0);
  EXPECT_EQ(t.iterations, 0);
}

TEST(WorkloadModel, ThetaMixWeightsSumToOne) {
  double sum = 0.0;
  for (const auto& b : theta_jobsize_mix()) sum += b.corehours;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Scheduler, SubmitAppAllocatesAndRuns) {
  Scheduler s(topo::Config::mini(4), 11);
  apps::AppParams p;
  p.iterations = 2;
  p.msg_scale = 0.1;
  const mpi::JobId id =
      s.submit_app("MILC", 16, Placement::kCompact, routing::Mode::kAd0, p);
  ASSERT_GE(id, 0);
  const mpi::JobId w[] = {id};
  EXPECT_TRUE(s.machine().run_to_completion(w));
  EXPECT_EQ(s.job_groups_spanned(id), 1);
}

TEST(Scheduler, ModePairConventions) {
  // AD0 keeps the Cray defaults; other modes set both knobs (paper III-A).
  EXPECT_EQ(modes_for(routing::Mode::kAd0).p2p, routing::Mode::kAd0);
  EXPECT_EQ(modes_for(routing::Mode::kAd0).a2a, routing::Mode::kAd1);
  EXPECT_EQ(modes_for(routing::Mode::kAd3).p2p, routing::Mode::kAd3);
  EXPECT_EQ(modes_for(routing::Mode::kAd3).a2a, routing::Mode::kAd3);
}

TEST(Scheduler, BackgroundPopulationReachesUtilization) {
  Scheduler s(topo::Config::mini(8), 13);
  auto bg = s.add_background(0.5, routing::Mode::kAd0);
  EXPECT_GT(bg.jobs.size(), 0u);
  EXPECT_GE(s.allocator().utilization(), 0.4);
  // The fill accounting reflects what actually happened.
  EXPECT_DOUBLE_EQ(bg.target_utilization, 0.5);
  EXPECT_GE(bg.achieved_utilization, 0.4);
  EXPECT_DOUBLE_EQ(bg.achieved_utilization, s.allocator().utilization());
  EXPECT_GE(bg.allocation_attempts, static_cast<int>(bg.jobs.size()));
  EXPECT_GE(bg.allocation_failures, 0);
  EXPECT_FALSE(bg.released);
  // Background jobs run open-ended until stopped.
  s.machine().run_for(200 * sim::kMicrosecond);
  for (const auto id : bg.jobs) EXPECT_FALSE(s.machine().job(id).complete());
  // Stop is best-effort: traffic winds down (ranks blocked on receives from
  // already-stopped peers may never complete -- see workload.hpp), but the
  // network fully drains. The node allocations come back immediately.
  s.stop_background(bg);
  EXPECT_TRUE(bg.released);
  EXPECT_DOUBLE_EQ(s.allocator().utilization(), 0.0);
  s.machine().run_for(5 * sim::kMillisecond);
  EXPECT_EQ(s.machine().network().packets_in_flight(), 0);
  // Stopping the same set again must not free anyone else's reallocation.
  sim::Rng rng(99);
  const auto taken = s.allocator().allocate(8, Placement::kCompact, rng);
  ASSERT_EQ(taken.size(), 8u);
  s.stop_background(bg);
  EXPECT_DOUBLE_EQ(
      s.allocator().utilization(),
      8.0 / static_cast<double>(s.allocator().total_count()));
}

TEST(Scheduler, ForegroundAllocationReleasedOnCompletion) {
  Scheduler s(topo::Config::mini(4), 21);
  apps::AppParams p;
  p.iterations = 2;
  p.msg_scale = 0.1;
  const double before = s.allocator().utilization();
  const mpi::JobId id =
      s.submit_app("MILC", 16, Placement::kCompact, routing::Mode::kAd0, p);
  ASSERT_GE(id, 0);
  EXPECT_TRUE(s.owns_allocation(id));
  EXPECT_GT(s.allocator().utilization(), before);
  const mpi::JobId w[] = {id};
  ASSERT_TRUE(s.machine().run_to_completion(w));
  // Completion released the nodes: utilization is back to pre-submit,
  // ownership is cleared, and a same-size resubmit fits on the freed nodes.
  EXPECT_DOUBLE_EQ(s.allocator().utilization(), before);
  EXPECT_FALSE(s.owns_allocation(id));
  const mpi::JobId id2 =
      s.submit_app("MILC", 16, Placement::kCompact, routing::Mode::kAd0, p);
  ASSERT_GE(id2, 0);
  EXPECT_EQ(s.job_nodes(id2), s.job_nodes(id));
  const mpi::JobId w2[] = {id2};
  EXPECT_TRUE(s.machine().run_to_completion(w2));
  EXPECT_DOUBLE_EQ(s.allocator().utilization(), before);
}

TEST(Scheduler, AllocationFailureReturnsMinusOne) {
  Scheduler s(topo::Config::mini(2), 15);
  apps::AppParams p;
  const auto total = s.allocator().total_count();
  EXPECT_EQ(s.submit_app("MILC", total + 1, Placement::kCompact,
                         routing::Mode::kAd0, p),
            -1);
}

TEST(Placement, Names) {
  EXPECT_STREQ(placement_name(Placement::kCompact), "compact");
  EXPECT_STREQ(placement_name(Placement::kRandom), "random");
  EXPECT_STREQ(placement_name(Placement::kGroups), "groups");
}

}  // namespace
}  // namespace dfsim::sched
