// Example: facility-style system monitoring with LDMS.
//
// Drives a full production workload (no foreground job — this is the
// operator's view), samples every router tile periodically like the LDMS
// deployment on Theta (paper Section III-B), and prints a time series of
// global congestion plus the most congested tile classes — the workflow
// behind the paper's Figs. 10-13.
#include <cstdio>
#include <iostream>

#include "monitor/ldms.hpp"
#include "sched/scheduler.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const routing::Mode default_mode =
      argc > 1 && std::string(argv[1]) == "AD3" ? routing::Mode::kAd3
                                                : routing::Mode::kAd0;
  topo::Config sys = topo::Config::theta_scaled();
  sys.groups = 8;
  sys.packet_payload_bytes = 4096;
  sys.buffer_flits = 1024;

  std::printf("System monitoring: %d-node system, default mode %s\n\n",
              sys.num_nodes(),
              std::string(routing::mode_name(default_mode)).c_str());

  sched::Scheduler sched(sys, 31);
  const auto bg = sched.add_background(0.85, default_mode);
  std::printf("Background workload: %zu jobs on %d nodes (%.0f%% utilization)\n\n",
              bg.jobs.size(), bg.total_nodes,
              100.0 * sched.allocator().utilization());

  monitor::LdmsSampler ldms(sched.machine().network(), 200 * sim::kMicrosecond);
  ldms.start();
  sched.machine().run_for(3 * sim::kMillisecond);

  const net::FlitTimes ft = sched.machine().network().flit_times();
  std::printf("  t (ms) | Mflits | stall/flit ratio\n");
  for (const auto& d : ldms.interval_deltas()) {
    const auto& c = d.cumulative;
    const double flits = static_cast<double>(c.rank1.flits + c.rank2.flits +
                                             c.rank3.flits);
    // Convert each class's stall time at its own link bandwidth.
    const double stall_flits =
        static_cast<double>(c.rank1.stall_ns) / ft.rank1 +
        static_cast<double>(c.rank2.stall_ns) / ft.rank2 +
        static_cast<double>(c.rank3.stall_ns) / ft.rank3;
    const double ratio = flits > 0 ? stall_flits / flits : 0.0;
    std::printf("  %6.2f | %6.2f | %.3f %s\n", sim::to_ms(d.t), flits / 1e6,
                ratio,
                std::string(std::min<std::size_t>(40,
                            static_cast<std::size_t>(ratio * 8)), '#')
                    .c_str());
  }

  // Hottest tiles right now (the Fig. 10/12 scatter, condensed).
  const auto tiles = monitor::per_tile_counters(sched.machine().network());
  std::int64_t peak[4] = {0, 0, 0, 0};
  for (const auto& tc : tiles)
    peak[static_cast<int>(tc.cls)] =
        std::max(peak[static_cast<int>(tc.cls)], tc.stall_ns);
  std::printf("\nPeak per-tile stall time by class:\n");
  for (int c = 0; c < topo::kNumTileClasses; ++c)
    std::printf("  %-6s %8.1f us\n",
                topo::tile_class_name(static_cast<topo::TileClass>(c)),
                peak[c] / 1000.0);
  std::printf(
      "\nRun with argument AD3 to see the post-change (paper Fig. 13) "
      "behaviour.\n");
  return 0;
}
