// Quickstart: build a small dragonfly system, run one MILC-like job under
// AD0 and AD3, and print runtimes plus network counters.
//
// This is the minimal end-to-end tour of the public API:
//   topo::Config -> sched::Scheduler -> submit_app -> run -> AutoPerf report.
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "sched/scheduler.hpp"
#include "stats/table.hpp"

int main() {
  using namespace dfsim;

  std::cout << "dragonfly-routing quickstart\n";
  std::cout << "============================\n\n";

  // A scaled-down Theta-like system (6 groups) so this runs in seconds;
  // 4KB simulation packets and Aries-like buffer depth (the bench tuning).
  topo::Config sys = topo::Config::theta_scaled();
  sys.groups = 6;
  sys.packet_payload_bytes = 4096;
  sys.buffer_flits = 2048;
  std::cout << "System: " << sys.groups << " groups, " << sys.num_routers()
            << " routers, " << sys.num_nodes() << " nodes\n\n";

  apps::AppParams params;
  params.iterations = 3;
  params.msg_scale = 0.15;
  params.compute_scale = 0.15;

  for (const routing::Mode mode :
       {routing::Mode::kAd0, routing::Mode::kAd3}) {
    core::ProductionConfig cfg;
    cfg.system = sys;
    cfg.app = "MILC";
    cfg.nnodes = 64;
    cfg.mode = mode;
    cfg.params = params;
    cfg.bg_utilization = 0.6;  // production-like background noise
    cfg.seed = 42;

    const core::RunResult r = core::run_production(cfg);
    if (!r.ok) {
      std::cerr << "run failed\n";
      return 1;
    }
    std::cout << "MILC/64 nodes under " << routing::mode_name(mode)
              << ": runtime " << stats::fmt(r.runtime_ms, 3) << " ms, "
              << r.groups_spanned << " groups spanned, "
              << stats::fmt(100.0 * r.autoperf.mpi_fraction, 1) << "% MPI\n";
    const auto ratios = r.local_stall_ratios();
    for (int i = 0; i < 5; ++i)
      std::cout << "    stall/flit " << core::kTileRatioLabels[i] << " = "
                << stats::fmt(ratios[static_cast<std::size_t>(i)], 3) << "\n";
    const auto& st = r.netstats;
    const double nonmin_frac =
        st.minimal_decisions + st.nonminimal_decisions > 0
            ? static_cast<double>(st.nonminimal_decisions) /
                  static_cast<double>(st.minimal_decisions +
                                      st.nonminimal_decisions)
            : 0.0;
    std::cout << "    system-wide non-minimal packet fraction: "
              << stats::fmt(100.0 * nonmin_frac, 1) << "%\n\n";
  }
  std::cout << "Done. See bench/ for the full paper reproduction.\n";
  return 0;
}
