// Example: per-application routing-bias study.
//
// Reproduces the paper's core methodology on one app of your choice: run it
// repeatedly under production-like background noise with each adaptive
// routing mode, then report mean runtime, variability, and the local
// stall-to-flit ratios — the evidence a facility would use to pick a
// per-application routing default.
//
// Usage: routing_bias_study [APP] [NNODES] [SAMPLES]
//   APP in {MILC, MILCREORDER, NEK5000, HACC, QBOX, RAYLEIGH}
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const std::string app = argc > 1 ? argv[1] : "MILC";
  const int nnodes = argc > 2 ? std::atoi(argv[2]) : 128;
  const int samples = argc > 3 ? std::atoi(argv[3]) : 6;
  if (!apps::has_app(app)) {
    std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
    return 1;
  }

  topo::Config sys = topo::Config::theta_scaled();
  sys.groups = 8;
  sys.packet_payload_bytes = 4096;
  sys.buffer_flits = 1024;

  std::printf("Routing-bias study: %s on %d nodes (%s, %d nodes total)\n\n",
              app.c_str(), nnodes, sys.name.c_str(), sys.num_nodes());

  stats::Table t({"Mode", "mean (ms)", "sigma", "p95 (ms)", "nonmin %",
                  "rank3 stall/flit"});
  for (int m = 0; m < routing::kNumModes; ++m) {
    const auto mode = static_cast<routing::Mode>(m);
    core::ProductionConfig cfg;
    cfg.system = sys;
    cfg.app = app;
    cfg.nnodes = nnodes;
    cfg.mode = mode;
    cfg.params.iterations = 3;
    cfg.params.msg_scale = 0.15;
    cfg.params.compute_scale = 0.15;
    cfg.bg_utilization = 0.7;
    cfg.seed = 7;
    const auto rs = core::run_production_batch(cfg, samples);
    if (rs.empty()) continue;
    std::vector<double> xs;
    double nonmin = 0.0, ratio = 0.0;
    for (const auto& r : rs) {
      if (!r.ok) continue;
      xs.push_back(r.runtime_ms);
      const auto& st = r.netstats;
      const auto total = st.minimal_decisions + st.nonminimal_decisions;
      nonmin += total > 0 ? 100.0 * static_cast<double>(st.nonminimal_decisions) /
                                static_cast<double>(total)
                          : 0.0;
      ratio += r.local_stall_ratios()[0];
    }
    if (xs.empty()) continue;
    const auto s = stats::summarize(xs);
    const auto n = static_cast<double>(xs.size());
    t.add_row({std::string(routing::mode_name(mode)), stats::fmt(s.mean, 3),
               stats::fmt(s.stddev, 3), stats::fmt(s.p95, 3),
               stats::fmt(nonmin / n, 1), stats::fmt(ratio / n, 3)});
  }
  t.print(std::cout);
  std::printf(
      "\nInterpretation (paper Sections IV-V): latency-bound apps want a "
      "strong minimal bias (AD3);\nbisection-bound apps (HACC-like) prefer "
      "equal bias (AD0).\n");
  return 0;
}
