// Example: the AWR adaptive routing runtime (De Sensi et al. baseline).
//
// Launches a latency-sensitive job with AWR attached, then turns a
// congestion storm on and off; prints the runtime's bias decisions as they
// track observed NIC latency. Contrast with examples/routing_bias_study
// (static per-application tuning, the approach this paper advocates).
#include <cstdio>

#include "apps/registry.hpp"
#include "core/awr.hpp"
#include "sched/scheduler.hpp"
#include "stats/table.hpp"

int main() {
  using namespace dfsim;
  topo::Config sys = topo::Config::theta_scaled();
  sys.groups = 8;
  sys.packet_payload_bytes = 4096;
  sys.buffer_flits = 2048;

  sched::Scheduler sched(sys, 1234);
  std::printf("AWR demo on %s (%d nodes)\n\n", sys.name.c_str(),
              sys.num_nodes());

  apps::AppParams p;
  p.iterations = 24;
  p.msg_scale = 0.15;
  p.compute_scale = 0.15;
  const mpi::JobId job = sched.submit_app(
      "MILC", 128, sched::Placement::kRandom, routing::Mode::kAd0, p);
  if (job < 0) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }

  core::AwrController::Params ap;
  ap.poll_period = 100 * sim::kMicrosecond;
  core::AwrController awr(sched.machine(), job, ap);
  awr.start();

  // Quiet start, then a storm of background congestion.
  sched.machine().run_for(500 * sim::kMicrosecond);
  std::printf("t=%.2f ms: unleashing background congestion storm...\n",
              sim::to_ms(sched.machine().engine().now()));
  const auto bg = sched.add_background(0.9, routing::Mode::kAd0);
  (void)bg;

  const mpi::JobId w[] = {job};
  if (!sched.machine().run_to_completion(w)) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }

  std::printf("\nAWR decision log (%d polls, %d escalations, %d relaxations):\n",
              awr.polls(), awr.escalations(), awr.relaxations());
  for (const auto& d : awr.decisions())
    std::printf("  t=%8.3f ms  -> %s  (observed mean latency %.1f us)\n",
                sim::to_ms(d.t), std::string(routing::mode_name(d.mode)).c_str(),
                d.latency_ns / 1000.0);
  std::printf("\nFinal mode: %s | job runtime %.3f ms\n",
              std::string(routing::mode_name(awr.current_mode())).c_str(),
              sim::to_ms(sched.machine().job(job).runtime()));
  std::printf(
      "\nThe paper's conclusion: a facility picking a good static default "
      "(AD3)\ncaptures most of this benefit without runtime overhead "
      "(bench/ext_awr_vs_static).\n");
  return 0;
}
