// Example: quantify noisy-neighbor interference (paper Section II-C).
//
// Runs the same MILC-like job (a) isolated, (b) compact-placed next to an
// aggressive bisection-streaming neighbor, and (c) dispersed across groups
// next to the same neighbor — under AD0 and AD3. Shows how placement and
// routing bias together determine how much background traffic hurts.
#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "monitor/autoperf.hpp"
#include "sched/scheduler.hpp"
#include "stats/table.hpp"

namespace {

double run_case(dfsim::routing::Mode mode, bool with_neighbor,
                dfsim::sched::Placement placement) {
  using namespace dfsim;
  topo::Config sys = topo::Config::theta_scaled();
  sys.groups = 6;
  sys.packet_payload_bytes = 4096;
  sys.buffer_flits = 1024;
  sched::Scheduler sched(sys, 99);

  // The victim job.
  apps::AppParams p;
  p.iterations = 3;
  p.msg_scale = 0.2;
  p.compute_scale = 0.2;
  const mpi::JobId victim =
      sched.submit_app("MILC", 64, placement, mode, p);
  if (victim < 0) return -1.0;

  // The aggressor: a bisection-bandwidth stream on half the machine.
  if (with_neighbor) {
    auto nodes = sched.allocator().allocate(sys.num_nodes() / 2,
                                            sched::Placement::kRandom,
                                            sched.rng());
    apps::SyntheticParams sp;
    sp.msg_bytes = 64 * 1024;
    sp.compute_ns = 20 * sim::kMicrosecond;
    sp.iterations = 0;
    mpi::JobSpec spec;
    spec.name = "aggressor";
    spec.nodes = std::move(nodes);
    spec.app = [sp](mpi::RankCtx& c) { return apps::bisection_traffic(c, sp); };
    sched.machine().submit(std::move(spec));
  }

  const dfsim::mpi::JobId w[] = {victim};
  if (!sched.machine().run_to_completion(w)) return -1.0;
  return sim::to_ms(sched.machine().job(victim).runtime());
}

}  // namespace

int main() {
  using namespace dfsim;
  std::printf("Noisy-neighbor interference study (MILC, 64 nodes)\n\n");
  stats::Table t({"Scenario", "AD0 (ms)", "AD3 (ms)", "AD3 gain"});
  struct Case {
    const char* name;
    bool neighbor;
    sched::Placement placement;
  };
  const Case cases[] = {
      {"isolated, compact", false, sched::Placement::kCompact},
      {"neighbor, compact", true, sched::Placement::kCompact},
      {"neighbor, dispersed", true, sched::Placement::kRandom},
  };
  for (const auto& c : cases) {
    const double a0 = run_case(routing::Mode::kAd0, c.neighbor, c.placement);
    const double a3 = run_case(routing::Mode::kAd3, c.neighbor, c.placement);
    t.add_row({c.name, stats::fmt(a0, 3), stats::fmt(a3, 3),
               stats::fmt_signed(a0 > 0 ? 100.0 * (a0 - a3) / a0 : 0.0, 1) +
                   "%"});
  }
  t.print(std::cout);
  std::printf(
      "\nReading the result (paper Sections II-C, IV): compact placement "
      "shields the victim\n(few shared links), and minimal bias keeps its "
      "latency-bound traffic on short paths.\nWhen the victim is dispersed "
      "*and* the aggressor saturates the direct rank-3 cables,\nthe regime "
      "flips HACC-like: equal bias (AD0) detours around the aggressor while "
      "strong\nminimal bias queues behind it. Which bias wins depends on "
      "where the congestion lives\n— exactly the paper's point about "
      "knowing your workload before picking a default.\n");
  return 0;
}
